package chgraph

import (
	"math"
	"testing"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	g, err := NewHypergraph(7, [][]uint32{
		{0, 4, 6}, {1, 2, 3, 5}, {0, 2, 4}, {1, 3, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 7 || g.NumHyperedges() != 4 || g.NumBipartiteEdges() != 13 {
		t.Fatal("shape mismatch")
	}
	if g.OverlapSize(0, 2) != 2 {
		t.Fatal("overlap mismatch")
	}
	chains := g.Chains(HyperedgeChains, 1, 0)
	if len(chains) != 1 || len(chains[0]) != 4 {
		t.Fatalf("chains = %v", chains)
	}
}

func TestPublicAPIRunMatchesAcrossEngines(t *testing.T) {
	g, err := LoadDataset("FS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, "BFS", RunConfig{Engine: Hygra, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, "BFS", RunConfig{Engine: ChGraph, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.VertexValues {
		if a.VertexValues[v] != b.VertexValues[v] {
			t.Fatalf("engines disagree at %d", v)
		}
	}
	if a.MemAccesses == 0 || b.Cycles == 0 {
		t.Fatal("metrics missing")
	}
	var groupSum uint64
	for _, v := range b.MemByGroup {
		groupSum += v
	}
	if groupSum != b.MemAccesses {
		t.Fatalf("group sum %d != total %d", groupSum, b.MemAccesses)
	}
}

func TestPublicAPIKCoreAndBCOutputs(t *testing.T) {
	g, err := LoadDataset("FS", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := Run(g, "k-core", RunConfig{Engine: ChGraph, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(kc.Coreness) != int(g.NumVertices()) {
		t.Fatal("coreness missing")
	}
	bc, err := Run(g, "BC", RunConfig{Engine: Hygra, Cores: 4, Source: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Centrality) != int(g.NumVertices()) {
		t.Fatal("centrality missing")
	}
	for _, c := range bc.Centrality {
		if math.IsNaN(c) || c < 0 {
			t.Fatalf("bad centrality %v", c)
		}
	}
}

func TestPublicAPIGraphDatasets(t *testing.T) {
	g, err := LoadGraphDataset("AZ", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, "SSSP", RunConfig{Engine: ChGraph, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.VertexValues[0] != 0 {
		t.Fatal("source distance must be 0")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	if _, err := LoadDataset("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	g, _ := NewHypergraph(3, [][]uint32{{0, 1}})
	if _, err := Run(g, "nope", RunConfig{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := NewHypergraph(2, [][]uint32{{5}}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestEstimateEngineCostMatchesPaper(t *testing.T) {
	c := EstimateEngineCost()
	if math.Abs(c.Areamm2-0.094) > 0.005 || math.Abs(c.PowermW-61) > 3 {
		t.Fatalf("engine cost %.3fmm2/%.0fmW deviates from §VI-E", c.Areamm2, c.PowermW)
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 21 {
		t.Fatalf("expected 21 reproducible results, have %d", len(figs))
	}
	if _, err := ReproduceFigure("nope", ExperimentConfig{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	// The area model runs without simulation; reproduce it end to end.
	out, err := ReproduceFigure("area", ExperimentConfig{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}
