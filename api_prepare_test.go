package chgraph

import (
	"context"
	"errors"
	"testing"
)

func prepareTestHG(t *testing.T) *Hypergraph {
	t.Helper()
	g, err := LoadDataset("OK", 0.02)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	return g
}

// TestPrepareReuseBitIdentical is the public artifact-reuse contract: a run
// fed a Prepared must return exactly what a from-scratch run returns, for
// unsharded and sharded configurations and across repeat uses.
func TestPrepareReuseBitIdentical(t *testing.T) {
	g := prepareTestHG(t)
	for _, cfg := range []RunConfig{
		{Engine: ChGraph, Cores: 4, Iterations: 3},
		{Engine: GLA, Cores: 4, Iterations: 3, Shards: 2},
		{Engine: ChGraph, Cores: 4, Iterations: 3, Shards: 2, ShardPolicy: "greedy"},
	} {
		pre, err := Prepare(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("shards=%d: Prepare: %v", cfg.Shards, err)
		}
		if pre.Shards() != cfg.Shards && !(cfg.Shards <= 1 && pre.Shards() <= 1) {
			t.Fatalf("Prepared.Shards() = %d, cfg has %d", pre.Shards(), cfg.Shards)
		}
		direct, err := Run(g, "PR", cfg)
		if err != nil {
			t.Fatalf("shards=%d: direct Run: %v", cfg.Shards, err)
		}
		for rep := 0; rep < 2; rep++ {
			c := cfg
			c.Prepared = pre
			reused, err := Run(g, "PR", c)
			if err != nil {
				t.Fatalf("shards=%d rep %d: prepared Run: %v", cfg.Shards, rep, err)
			}
			if reused.Cycles != direct.Cycles || reused.Iterations != direct.Iterations {
				t.Fatalf("shards=%d rep %d: cycles %d vs %d, iters %d vs %d",
					cfg.Shards, rep, reused.Cycles, direct.Cycles, reused.Iterations, direct.Iterations)
			}
			for i := range direct.VertexValues {
				if direct.VertexValues[i] != reused.VertexValues[i] {
					t.Fatalf("shards=%d rep %d: vertex %d diverged", cfg.Shards, rep, i)
				}
			}
		}
	}
}

func TestPrepareMismatchesRejected(t *testing.T) {
	g := prepareTestHG(t)
	pre, err := Prepare(context.Background(), g, RunConfig{Engine: ChGraph, Cores: 4})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}

	if _, err := Run(g, "PR", RunConfig{Engine: ChGraph, Cores: 8, Prepared: pre}); err == nil {
		t.Fatalf("core-count mismatch accepted")
	}
	if _, err := Run(g, "PR", RunConfig{Engine: ChGraph, Cores: 4, WMin: 9, Prepared: pre}); err == nil {
		t.Fatalf("wMin mismatch accepted")
	}
	if _, err := Run(g, "PR", RunConfig{Engine: ChGraph, Cores: 4, Shards: 2, Prepared: pre}); err == nil {
		t.Fatalf("unsharded Prepared accepted by a sharded run")
	}
	other := prepareTestHG(t)
	if _, err := Run(other, "PR", RunConfig{Engine: ChGraph, Cores: 4, Prepared: pre}); err == nil {
		t.Fatalf("Prepared accepted for a different hypergraph")
	}
	// A kind change is fine — the artifacts serve every execution model.
	if _, err := Run(g, "PR", RunConfig{Engine: Hygra, Cores: 4, Iterations: 2, Prepared: pre}); err != nil {
		t.Fatalf("engine-kind change rejected: %v", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	g := prepareTestHG(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, "PR", RunConfig{Engine: ChGraph, Cores: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("unsharded err = %v, want context.Canceled", err)
	}
	if _, err := RunContext(ctx, g, "PR", RunConfig{Engine: ChGraph, Cores: 4, Shards: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded err = %v, want context.Canceled", err)
	}
	if _, err := Prepare(ctx, g, RunConfig{Engine: ChGraph, Cores: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Prepare err = %v, want context.Canceled", err)
	}
}

func TestParseEngineNames(t *testing.T) {
	names := EngineNames()
	if len(names) != 6 {
		t.Fatalf("EngineNames() = %v, want 6 models", names)
	}
	for _, n := range names {
		if _, err := ParseEngine(n); err != nil {
			t.Fatalf("ParseEngine(%q): %v", n, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatalf("bogus engine accepted")
	}
}
