package chgraph

import (
	"fmt"

	"chgraph/internal/bench"
	"chgraph/internal/obs"
)

// Figure identifies one reproducible table/figure from the paper.
type Figure struct {
	// ID is the runner id passed to ReproduceFigure (e.g. "fig14").
	ID string
	// Description summarizes the paper result it regenerates.
	Description string
}

// Figures lists every reproducible evaluation result in paper order.
func Figures() []Figure {
	var out []Figure
	for _, r := range bench.Runners() {
		out = append(out, Figure{ID: r.ID, Description: r.Desc})
	}
	return out
}

// ExperimentConfig tunes figure reproduction.
type ExperimentConfig struct {
	// Scale multiplies the calibrated dataset sizes (1 = default; smaller
	// is faster and less faithful).
	Scale float64
	// Datasets/Algos restrict the sweep (nil = the paper's full set).
	Datasets, Algos []string
	// Parallel bounds concurrently simulated cells.
	Parallel int
	// Logf, if set, receives progress lines.
	Logf func(format string, args ...interface{})
}

// ExperimentMetrics exposes the session-level telemetry of an Experiments
// session (one timeline per simulated cell); see SessionMetrics.WriteJSON.
type ExperimentMetrics = obs.SessionMetrics

// ReproduceFigure regenerates one table/figure and returns it as printable
// text. Runs within one Experiments session share dataset and simulation
// caches; for multiple figures prefer NewExperiments.
func ReproduceFigure(id string, cfg ExperimentConfig) (string, error) {
	return NewExperiments(cfg).Reproduce(id)
}

// Experiments is a reproduction session with shared caches.
type Experiments struct {
	s *bench.Session
}

// NewExperiments builds a session. Every simulated cell's timeline is
// collected and available through Metrics.
func NewExperiments(cfg ExperimentConfig) *Experiments {
	var log *obs.Logger
	if cfg.Logf != nil {
		log = obs.NewLoggerFunc(cfg.Logf, obs.LevelRun)
	}
	return &Experiments{s: bench.NewSession(bench.Config{
		Scale: cfg.Scale, Datasets: cfg.Datasets, Algos: cfg.Algos,
		Parallel: cfg.Parallel, Log: log, Metrics: obs.NewSessionMetrics(),
	})}
}

// Metrics returns the session's aggregated per-cell telemetry.
func (e *Experiments) Metrics() *ExperimentMetrics { return e.s.Metrics() }

// Reproduce regenerates the identified figure.
func (e *Experiments) Reproduce(id string) (string, error) {
	r, ok := bench.RunnerByID(id)
	if !ok {
		return "", fmt.Errorf("chgraph: unknown figure %q (have %v)", id, bench.RunnerIDs())
	}
	return r.Run(e.s).String(), nil
}
