// Package chgraph is a library-level reproduction of "Hardware-Accelerated
// Hypergraph Processing with Chain-Driven Scheduling" (HPCA 2022): the
// chain-driven Generate-Load-Apply (GLA) execution model for hypergraph
// processing, the per-core ChGraph hardware engine that accelerates it, the
// index-ordered Hygra baseline, and the simulated multicore memory system
// the paper evaluates on.
//
// The package exposes four layers:
//
//   - hypergraphs: loading the paper-shaped synthetic datasets or building
//     your own (NewHypergraph / LoadDataset / LoadGraphDataset);
//   - chains: the paper's core abstraction — overlap-aware abstraction
//     graphs and chain schedules (Hypergraph.Chains);
//   - execution: running any of the six hypergraph algorithms (plus the
//     ordinary-graph workloads) under any execution model on the simulated
//     system, with full architectural metrics (Run);
//   - experiments: regenerating any table or figure from the paper's
//     evaluation (ReproduceFigure / Figures).
package chgraph

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sync"

	"chgraph/internal/algorithms"
	"chgraph/internal/bitset"
	"chgraph/internal/core"
	"chgraph/internal/dist"
	"chgraph/internal/engine"
	"chgraph/internal/gen"
	"chgraph/internal/hwcost"
	"chgraph/internal/hypergraph"
	"chgraph/internal/oag"
	"chgraph/internal/obs"
	"chgraph/internal/shard"
	"chgraph/internal/sim/system"
	"chgraph/internal/trace"
)

// Hypergraph is a bipartite-CSR hypergraph (Figure 4 of the paper).
type Hypergraph struct {
	b *hypergraph.Bipartite

	// comp caches the delta/varint-compressed view built on first use of
	// RunConfig.Compressed. One stable pointer per Hypergraph is what lets
	// Prepare/Run match prepared artifacts to the graph they were built for
	// in compressed mode.
	compOnce sync.Once
	comp     *hypergraph.Bipartite
}

// compressed returns the compressed-only view of g, building it once.
func (g *Hypergraph) compressed() *hypergraph.Bipartite {
	if g.b.Compressed() {
		return g.b
	}
	g.compOnce.Do(func() { g.comp = g.b.Compress() })
	return g.comp
}

// runGraph resolves which representation a cfg-shaped run executes on.
func (g *Hypergraph) runGraph(compressed bool) *hypergraph.Bipartite {
	if compressed {
		return g.compressed()
	}
	return g.b
}

// NewHypergraph builds a hypergraph from per-hyperedge incident vertex
// lists. Vertex ids must be below numVertices.
func NewHypergraph(numVertices uint32, hyperedges [][]uint32) (*Hypergraph, error) {
	b, err := hypergraph.Build(numVertices, hyperedges)
	if err != nil {
		return nil, err
	}
	b.SortAdjacency()
	return &Hypergraph{b: b}, nil
}

// NewDirectedHypergraph builds a directed hypergraph (§II-A): each
// hyperedge has a source vertex set (whose values it gathers in hyperedge
// computation) and a destination vertex set (which it updates in vertex
// computation).
func NewDirectedHypergraph(numVertices uint32, sources, destinations [][]uint32) (*Hypergraph, error) {
	b, err := hypergraph.BuildDirected(numVertices, sources, destinations)
	if err != nil {
		return nil, err
	}
	return &Hypergraph{b: b}, nil
}

// NewGraph builds the 2-uniform hypergraph embedding of an ordinary graph
// (§II-A: a graph is a special case of a hypergraph).
func NewGraph(numVertices uint32, edges [][2]uint32) (*Hypergraph, error) {
	b, err := hypergraph.FromGraphEdges(numVertices, edges)
	if err != nil {
		return nil, err
	}
	return &Hypergraph{b: b}, nil
}

// ReadHypergraph parses a hypergraph from r in either on-disk format
// (internal/hypergraph/io.go): the binary format is detected by its "CHG1"
// magic, anything else is parsed as the line-oriented text format (a `V H`
// header, then one line of incident vertex ids per hyperedge). Adjacency is
// sorted as NewHypergraph would, so a round-trip through WriteText/WriteBinary
// yields an equivalent hypergraph.
func ReadHypergraph(r io.Reader) (*Hypergraph, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(4)
	var b *hypergraph.Bipartite
	if err == nil && string(magic) == "CHG1" {
		b, err = hypergraph.ReadBinary(br)
	} else {
		b, err = hypergraph.ReadText(br)
	}
	if err != nil {
		return nil, err
	}
	b.SortAdjacency()
	return &Hypergraph{b: b}, nil
}

// WriteText writes g in the line-oriented text format ReadHypergraph accepts.
func (g *Hypergraph) WriteText(w io.Writer) error { return hypergraph.WriteText(w, g.b) }

// WriteBinary writes g in the compact binary format ReadHypergraph accepts.
func (g *Hypergraph) WriteBinary(w io.Writer) error { return hypergraph.WriteBinary(w, g.b) }

// Datasets lists the paper's five hypergraph dataset names (Table II).
func Datasets() []string { return append([]string{}, gen.HypergraphNames...) }

// GraphDatasets lists the ordinary-graph dataset names (Figure 25).
func GraphDatasets() []string { return append([]string{}, gen.GraphNames...) }

// LoadDataset generates the named paper-shaped synthetic hypergraph.
// scale <= 0 selects the calibrated default size.
func LoadDataset(name string, scale float64) (*Hypergraph, error) {
	b, err := gen.Load(name, scale)
	if err != nil {
		return nil, err
	}
	return &Hypergraph{b: b}, nil
}

// LoadGraphDataset generates the named ordinary-graph dataset.
func LoadGraphDataset(name string, scale float64) (*Hypergraph, error) {
	b, err := gen.LoadGraph(name, scale)
	if err != nil {
		return nil, err
	}
	return &Hypergraph{b: b}, nil
}

// NumVertices returns |V|.
func (g *Hypergraph) NumVertices() uint32 { return g.b.NumVertices() }

// NumHyperedges returns |H|.
func (g *Hypergraph) NumHyperedges() uint32 { return g.b.NumHyperedges() }

// NumBipartiteEdges returns the incidence count (Table II's #BEdges).
func (g *Hypergraph) NumBipartiteEdges() uint64 { return g.b.NumBipartiteEdges() }

// IncidentVertices returns N(h); the slice must not be modified.
func (g *Hypergraph) IncidentVertices(h uint32) []uint32 { return g.b.IncidentVertices(h) }

// IncidentHyperedges returns N(v); the slice must not be modified.
func (g *Hypergraph) IncidentHyperedges(v uint32) []uint32 { return g.b.IncidentHyperedges(v) }

// OverlapSize returns |N(a) ∩ N(b)| for hyperedges a and b (§II-A).
func (g *Hypergraph) OverlapSize(a, b uint32) uint32 { return g.b.OverlapSize(a, b) }

// Stats returns Table II-style statistics.
func (g *Hypergraph) Stats() hypergraph.Stats { return hypergraph.ComputeStats(g.b) }

// Footprint reports the adjacency storage a run with RunConfig.Compressed
// set accordingly executes on: total bytes (offset arrays plus neighbor
// storage, both incidence directions) and bytes per bipartite edge. Asking
// for the compressed footprint builds (and caches) the compressed view.
func (g *Hypergraph) Footprint(compressed bool) (totalBytes uint64, bytesPerEdge float64) {
	b := g.runGraph(compressed)
	totalBytes = b.AdjacencyBytes()
	if e := b.NumBipartiteEdges(); e > 0 {
		bytesPerEdge = float64(totalBytes) / float64(e)
	}
	return totalBytes, bytesPerEdge
}

// Side selects hyperedge chains (scheduling hyperedges, as in vertex
// computation) or vertex chains.
type Side int

// Chain sides.
const (
	HyperedgeChains Side = iota
	VertexChains
)

// Chain is one overlap-inducing chain (Definition 2): a schedule of
// hyperedges (or vertices) in which successive elements overlap.
type Chain []uint32

// Chains decomposes the hypergraph into overlap-inducing chains (§IV): it
// builds the overlap-aware abstraction graph at threshold wMin (0 = the
// paper's default 3) and runs the chain generator with depth bound dMax
// (0 = the paper's default 16) over all elements.
func (g *Hypergraph) Chains(side Side, wMin uint32, dMax int) []Chain {
	if wMin == 0 {
		wMin = oag.DefaultWMin
	}
	if dMax == 0 {
		dMax = core.DefaultDMax
	}
	oside := oag.Hyperedges
	n := g.b.NumHyperedges()
	if side == VertexChains {
		oside = oag.Vertices
		n = g.b.NumVertices()
	}
	o := oag.Build(g.b, oside, wMin, nil)
	active := bitset.New(n)
	for i := uint32(0); i < n; i++ {
		active.Set(i)
	}
	cs := core.Generate(o, 0, n, active, dMax, nil)
	out := make([]Chain, cs.NumChains())
	for j := range out {
		out[j] = append(Chain{}, cs.Chain(j)...)
	}
	return out
}

// Engine selects the execution model.
type Engine = engine.Kind

// Execution models.
const (
	// Hygra is the index-ordered software baseline [41].
	Hygra = engine.Hygra
	// GLA is the chain-driven model executed purely in software.
	GLA = engine.GLA
	// ChGraph is the hardware-accelerated model (HCG + CP, §V).
	ChGraph = engine.ChGraph
	// ChGraphHCG is ChGraph without the chain-driven prefetcher.
	ChGraphHCG = engine.ChGraphHCG
	// HATSV is the modified HATS baseline (§II-C).
	HATSV = engine.HATSV
	// HygraPF is Hygra plus an event-triggered hardware prefetcher.
	HygraPF = engine.HygraPF
)

// Algorithms lists the supported hypergraph algorithm names.
func Algorithms() []string { return append([]string{}, algorithms.HypergraphAlgos...) }

// ParseEngine maps a CLI/API spelling ("hygra", "gla", "chgraph",
// "chgraph-hcg", "hats-v", "hygra-pf"; case-insensitive) to its Engine.
func ParseEngine(s string) (Engine, error) { return engine.ParseKind(s) }

// EngineNames lists the spellings ParseEngine accepts.
func EngineNames() []string { return engine.KindNames() }

// RunConfig tunes a Run; the zero value reproduces the paper's defaults
// (16 cores, scaled Table I system, W_min=3, D_max=16).
type RunConfig struct {
	// Engine is the execution model (default Hygra).
	Engine Engine
	// Cores overrides the simulated core count.
	Cores int
	// DMax and WMin override the chain parameters.
	DMax int
	WMin uint32
	// LLCBytes overrides the total last-level cache capacity.
	LLCBytes uint64
	// IncludePreprocessing charges modelled preprocessing time.
	IncludePreprocessing bool
	// Source sets the source vertex for BFS/BC/SSSP.
	Source uint32
	// Iterations overrides the iteration count for PR/Adsorption.
	Iterations int
	// Workers bounds the host-side parallelism used to build OAGs and
	// compile phase op streams. Simulated results are identical for every
	// value; 0 uses all available CPUs, 1 forces the serial path.
	Workers int
	// Compressed runs on the delta/varint-compressed CSR instead of the raw
	// one: adjacency storage shrinks (the bytes_per_edge bench metric), the
	// engines decode incidence lists through streaming cursors, and
	// distributed runs ship the compressed blob to workers. Results are
	// bit-identical to the raw representation — offsets stay uncompressed,
	// so the simulated address stream never changes. A Prepared artifact
	// must have been built with the same setting.
	Compressed bool
	// Observer, if non-nil, receives per-phase, per-iteration and run
	// snapshots during the run (see NewTimeline / NewLogObserver).
	// Observers are read-only: attaching one leaves the Result
	// bit-identical.
	Observer Observer
	// Shards, when above 1, splits the hypergraph into that many shards and
	// runs one engine per shard with a merge barrier between iterations
	// (internal/shard). Results are deterministic for any shard count;
	// Shards <= 1 runs the single unsharded engine, which sharded runs at
	// K=1 reproduce bit for bit.
	Shards int
	// ShardPolicy selects the partitioner: "range" (contiguous hyperedge
	// ranges, the default) or "greedy" (streaming replication-minimizing
	// assignment).
	ShardPolicy string
	// ShardCapFactor tunes the greedy policy's per-shard size cap
	// (<=0 uses the default headroom).
	ShardCapFactor float64
	// DistWorkers, when non-empty, runs the computation distributed: one
	// shard per address, each executed by a chgraph-worker process
	// (internal/dist), with the frontier merge barrier driven over HTTP.
	// The shard count is len(DistWorkers) — Shards is ignored — and
	// ShardPolicy/ShardCapFactor configure the partitioner as for in-process
	// sharded runs. Crash-free distributed runs are bit-identical to the
	// equivalent in-process sharded run; a run that recovered a worker crash
	// keeps exact algorithm state but not simulated cycle counters
	// (DESIGN.md §16). Prepared is not supported with DistWorkers (each
	// worker preps its own sub-hypergraph).
	DistWorkers []string
	// Prepared supplies prebuilt preprocessing artifacts from Prepare so
	// repeat runs of the same spec skip dataset chunking, OAG construction
	// and (for sharded runs) partitioning entirely. It must have been built
	// from the same hypergraph with a configuration matching this one
	// (cores, W_min, shard count/policy); a mismatch is an error. Prepared
	// artifacts are read-only and safe to share across concurrent runs —
	// the serving layer's cache hands one Prepared to many requests.
	Prepared *Prepared
}

// Prepared is an opaque bundle of reusable preprocessing artifacts: the
// per-core chunking and overlap-aware abstraction graphs for unsharded runs,
// plus the materialized partition and per-shard OAGs for sharded ones.
// Preprocessing is the dominant amortizable cost of a run (§IV-A); building
// it once via Prepare and reusing it through RunConfig.Prepared is what a
// steady-state serving cache amortizes.
type Prepared struct {
	b      *hypergraph.Bipartite
	cores  int
	wMin   uint32
	prep   *engine.Prep    // unsharded artifacts (nil for sharded specs)
	shards int             // >1 when prepared for a sharded spec
	policy shard.Policy    // sharded only
	sh     *shard.Prepared // sharded artifacts

	// generation counts the Apply steps since the from-scratch Prepare that
	// started this artifact's lineage (0 for a fresh Prepare).
	generation uint64
}

// Shards returns the shard count the artifacts were built for (<=1 when
// prepared for an unsharded run).
func (p *Prepared) Shards() int { return p.shards }

// Generation returns how many mutation batches were applied to derive this
// artifact from its original from-scratch Prepare. Serving layers use it to
// tag runs with the artifact version they executed on.
func (p *Prepared) Generation() uint64 { return p.generation }

// Batch is one atomic set of hypergraph mutations: whole hyperedges are
// removed by pre-batch id and new ones appended (compacting the id space —
// survivors keep their relative order, additions take the ids past the last
// survivor). The vertex set is fixed. Stage mutations via AddHyperedges /
// RemoveHyperedges or fill the fields directly.
type Batch = hypergraph.Batch

// Apply derives a new hypergraph version and its prepared artifacts from one
// mutation batch, updating the overlap-aware abstraction graphs
// incrementally (oag.Update) instead of re-running the full counting pass —
// for sharded artifacts the mutated hypergraph is also re-partitioned with
// the original policy, and only shards whose sub-hypergraph changed rebuild
// anything. The result is copy-on-write: p and the hypergraph it was built
// from are untouched and remain fully usable, so in-flight runs on the old
// version finish undisturbed while new runs adopt the returned pair.
//
// The correctness contract (pinned by the differential tests) is that the
// returned artifact is bit-identical — state checksums, simulated cycles —
// to a from-scratch Prepare on the returned hypergraph.
func (p *Prepared) Apply(ctx context.Context, batch Batch) (*Hypergraph, *Prepared, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	d, err := p.b.ApplyBatch(batch)
	if err != nil {
		return nil, nil, err
	}
	np := &Prepared{
		b: d.New, cores: p.cores, wMin: p.wMin,
		shards: p.shards, policy: p.policy,
		generation: p.generation + 1,
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if p.sh != nil {
		sh, err := shard.Update(ctx, p.sh, d, 0)
		if err != nil {
			return nil, nil, err
		}
		np.sh = sh
	} else {
		np.prep = engine.UpdatePrep(p.prep, d)
	}
	return &Hypergraph{b: d.New}, np, nil
}

// Prepare builds the reusable preprocessing artifacts for running cfg-shaped
// requests on g: chunks and both OAGs at cfg's core count and W_min, and —
// when cfg.Shards > 1 — the materialized partition with per-shard OAGs. The
// artifacts serve every engine kind. Cancelling ctx aborts between stages
// and inside the parallel build workers.
func Prepare(ctx context.Context, g *Hypergraph, cfg RunConfig) (*Prepared, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	eopt := prepOptions(cfg)
	b := g.runGraph(cfg.Compressed)
	p := &Prepared{b: b, cores: eopt.Sys.Cores, wMin: eopt.WMin}
	if cfg.Shards > 1 {
		pol := shard.PolicyRange
		if cfg.ShardPolicy != "" {
			var err error
			if pol, err = shard.ParsePolicy(cfg.ShardPolicy); err != nil {
				return nil, err
			}
		}
		sh, err := shard.Prepare(ctx, b, shard.Options{
			Shards: cfg.Shards, Policy: pol, CapFactor: cfg.ShardCapFactor,
			Engine: eopt,
		})
		if err != nil {
			return nil, err
		}
		p.shards, p.policy, p.sh = cfg.Shards, pol, sh
		return p, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.prep = engine.PrepareParallel(b, eopt.Sys.Cores, eopt.WMin, eopt.Workers)
	return p, nil
}

// prepOptions resolves the engine options a cfg-shaped run executes under
// (shared by Run and Prepare so prepared artifacts always match).
func prepOptions(cfg RunConfig) engine.Options {
	sys := system.ScaledConfig()
	if cfg.Cores > 0 {
		sys.Cores = cfg.Cores
	}
	if cfg.LLCBytes > 0 {
		sys = sys.WithLLCBytes(cfg.LLCBytes)
	}
	return engine.Options{
		Kind: cfg.Engine, Sys: sys, DMax: cfg.DMax, WMin: cfg.WMin,
		ChargePreprocess: cfg.IncludePreprocessing, Workers: cfg.Workers,
		Observer: cfg.Observer,
	}.WithDefaults()
}

// Observability layer (internal/obs re-exported): an Observer taps the
// engine's per-phase telemetry; a Timeline records it for JSON/CSV export;
// a leveled log observer prints it as text.
type (
	// Observer receives PhaseDone/IterationDone/RunDone snapshots.
	Observer = obs.Observer
	// PhaseSnapshot is one computation phase's measurement delta.
	PhaseSnapshot = obs.PhaseSnapshot
	// IterationSnapshot summarizes one synchronous iteration.
	IterationSnapshot = obs.IterationSnapshot
	// RunSnapshot summarizes a completed run.
	RunSnapshot = obs.RunSnapshot
	// Timeline records a run's full trajectory (WriteJSON / WriteCSV).
	Timeline = obs.Timeline
	// LogLevel selects log observer verbosity.
	LogLevel = obs.Level
)

// Log observer verbosity levels.
const (
	LogSilent    = obs.LevelSilent
	LogRun       = obs.LevelRun
	LogIteration = obs.LevelIteration
	LogPhase     = obs.LevelPhase
)

// NewTimeline returns a timeline recorder to pass as RunConfig.Observer.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// NewLogObserver returns an observer printing telemetry lines to w at the
// given verbosity.
func NewLogObserver(w io.Writer, level LogLevel) Observer { return obs.NewLogger(w, level) }

// MultiObserver fans snapshots out to several observers (nils skipped).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// Result reports a run's outputs and architectural measurements.
type Result struct {
	// VertexValues and HyperedgeValues are the final attribute arrays
	// (distances for BFS/SSSP, ranks for PR, labels for CC, MIS status,
	// remaining degrees for k-core).
	VertexValues, HyperedgeValues []float64
	// Coreness (k-core) and Centrality (BC) are populated when relevant.
	Coreness, Centrality []float64
	// Iterations is the number of synchronous iterations.
	Iterations int
	// Cycles is simulated execution time.
	Cycles uint64
	// MemAccesses is the total number of off-chip line transfers — the
	// paper's headline "number of main memory accesses".
	MemAccesses uint64
	// MemByGroup splits MemAccesses by the Figure 15 array groups:
	// offset, incident, value, OAG, other.
	MemByGroup map[string]uint64
	// MemStallFraction is the fraction of core time stalled on DRAM
	// (Figure 5).
	MemStallFraction float64
	// PreprocessCycles is included in Cycles when preprocessing was
	// charged.
	PreprocessCycles uint64
	// Chains and ChainNodes summarize generated chain schedules.
	Chains, ChainNodes uint64
	// Shards echoes the shard count for sharded runs (0 when unsharded);
	// ReplicatedVertices and ReplicationFactor then measure the partition
	// cut (vertices present on more than one shard, and mean shard copies
	// per vertex).
	Shards             int
	ReplicatedVertices uint64
	ReplicationFactor  float64
	// WorkerRestarts counts distributed worker crashes recovered during the
	// run (always 0 for in-process runs).
	WorkerRestarts uint64
}

// Run executes the named algorithm (see Algorithms, plus "SSSP" and
// "Adsorption" for graphs) on g under cfg.
func Run(g *Hypergraph, algorithm string, cfg RunConfig) (*Result, error) {
	return RunContext(context.Background(), g, algorithm, cfg)
}

// RunContext is Run with cooperative cancellation: once ctx is done the
// engine abandons the run at the next phase boundary (partially compiled
// phases are discarded, never simulated or applied to algorithm state) and
// returns ctx.Err(). Cancellation propagates into the parallel compile
// workers and, for sharded runs, every shard's engine. A nil error
// guarantees a Result bit-identical to an uncancelled Run.
func RunContext(ctx context.Context, g *Hypergraph, algorithm string, cfg RunConfig) (*Result, error) {
	var alg algorithms.Algorithm
	switch algorithm {
	case "BFS":
		alg = algorithms.NewBFS(cfg.Source)
	case "BC":
		alg = algorithms.NewBC(cfg.Source)
	case "SSSP":
		alg = algorithms.NewSSSP(cfg.Source)
	case "PR":
		it := cfg.Iterations
		if it == 0 {
			it = 10
		}
		alg = algorithms.NewPageRank(it)
	case "Adsorption":
		it := cfg.Iterations
		if it == 0 {
			it = 10
		}
		alg = algorithms.NewAdsorption(it)
	default:
		var ok bool
		alg, ok = algorithms.ByName(algorithm)
		if !ok {
			return nil, fmt.Errorf("chgraph: unknown algorithm %q (have %v + %v)", algorithm, algorithms.HypergraphAlgos, algorithms.GraphAlgos)
		}
	}

	eopt := prepOptions(cfg)
	b := g.runGraph(cfg.Compressed)
	if len(cfg.DistWorkers) > 0 && cfg.Prepared != nil {
		return nil, fmt.Errorf("chgraph: Prepared artifacts are not supported with DistWorkers (each worker preps its own sub-hypergraph)")
	}
	if p := cfg.Prepared; p != nil {
		if p.b != b {
			return nil, fmt.Errorf("chgraph: Prepared was built for a different hypergraph or representation (check RunConfig.Compressed)")
		}
		if p.cores != eopt.Sys.Cores || p.wMin != eopt.WMin {
			return nil, fmt.Errorf("chgraph: Prepared built for cores=%d/wMin=%d, run wants cores=%d/wMin=%d",
				p.cores, p.wMin, eopt.Sys.Cores, eopt.WMin)
		}
		if (cfg.Shards > 1) != (p.shards > 1) {
			return nil, fmt.Errorf("chgraph: Prepared built for %d shards, run wants %d", p.shards, cfg.Shards)
		}
	}
	var (
		res  *engine.Result
		sres *shard.Result
		err  error
	)
	if len(cfg.DistWorkers) > 0 {
		var pol shard.Policy
		if cfg.ShardPolicy != "" {
			if pol, err = shard.ParsePolicy(cfg.ShardPolicy); err != nil {
				return nil, err
			}
		}
		sres, err = dist.RunCtx(ctx, b, alg, dist.Options{
			Workers: cfg.DistWorkers, Policy: pol, CapFactor: cfg.ShardCapFactor,
			Engine: eopt,
		})
		if sres != nil {
			res = sres.Result
		}
	} else if cfg.Shards > 1 {
		pol := shard.PolicyRange
		if cfg.ShardPolicy != "" {
			if pol, err = shard.ParsePolicy(cfg.ShardPolicy); err != nil {
				return nil, err
			}
		}
		sopt := shard.Options{
			Shards: cfg.Shards, Policy: pol, CapFactor: cfg.ShardCapFactor,
			Engine: eopt,
		}
		if cfg.Prepared != nil {
			sopt.Pre = cfg.Prepared.sh
		}
		sres, err = shard.RunCtx(ctx, b, alg, sopt)
		if sres != nil {
			res = sres.Result
		}
	} else {
		if cfg.Prepared != nil {
			eopt.Prep = cfg.Prepared.prep
		}
		res, err = engine.RunCtx(ctx, b, alg, eopt)
	}
	if err != nil {
		return nil, err
	}
	out := &Result{
		VertexValues:     res.State.VertexVal,
		HyperedgeValues:  res.State.HyperedgeVal,
		Iterations:       res.Iterations,
		Cycles:           res.Cycles,
		MemAccesses:      res.MemTotal(),
		MemStallFraction: res.StallFraction(),
		PreprocessCycles: res.PreprocessCycles,
		Chains:           res.ChainCount,
		ChainNodes:       res.ChainNodes,
		MemByGroup:       map[string]uint64{},
	}
	for gname, v := range res.MemByGroup() {
		out.MemByGroup[trace.Group(gname).String()] = v
	}
	if sres != nil {
		out.Shards = sres.Shards
		out.ReplicatedVertices = sres.ReplicatedVertices
		out.ReplicationFactor = sres.ReplicationFactor
		out.WorkerRestarts = sres.WorkerRestarts
	}
	if kc, ok := alg.(*algorithms.KCore); ok {
		out.Coreness = kc.Coreness
	}
	if bc, ok := alg.(*algorithms.BC); ok {
		out.Centrality = bc.Centrality
	}
	return out, nil
}

// EngineCost is the §VI-E area/power estimate for one ChGraph engine.
type EngineCost = hwcost.Report

// EstimateEngineCost returns the 65nm area/power model of the paper's
// ChGraph configuration (0.094mm², 61mW).
func EstimateEngineCost() EngineCost {
	return hwcost.Estimate(hwcost.PaperConfig(), hwcost.Tech65nm())
}
